//! Compressed Sparse Row (CSR) matrix with a COO builder.
//!
//! HADAD's evaluation depends heavily on sparse inputs (ultra-sparse
//! tweet-hashtag matrices at 0.00018% density, Amazon/Netflix rating
//! matrices): several of its winning rewrites are wins precisely because an
//! operand is sparse. CSR gives `O(nnz)` row-wise kernels for those paths.

use crate::dense::DenseMatrix;

/// CSR sparse matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices of stored entries, sorted within each row.
    indices: Vec<usize>,
    /// Stored values, aligned with `indices`.
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds from COO triplets; duplicate coordinates are summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut trips: Vec<(usize, usize, f64)> = triplets
            .into_iter()
            .inspect(|&(r, c, _)| {
                assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds {rows}x{cols}");
            })
            .filter(|&(_, _, v)| v != 0.0)
            .collect();
        trips.sort_unstable_by_key(|t| (t.0, t.1));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(trips.len());
        let mut values: Vec<f64> = Vec::with_capacity(trips.len());
        for (r, c, v) in trips {
            if let (Some(&last_c), true) = (indices.last(), indptr[r + 1] > 0) {
                // Merge duplicates that landed adjacent after the sort.
                let row_has_entries = indptr[r + 1] > indptr[r];
                if row_has_entries && last_c == c {
                    *values.last_mut().expect("non-empty") += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
            indptr[r + 1] = indices.len();
        }
        // Forward-fill row pointers for empty rows.
        for r in 0..rows {
            if indptr[r + 1] < indptr[r] {
                indptr[r + 1] = indptr[r];
            }
        }
        SparseMatrix { rows, cols, indptr, indices, values }
    }

    /// Builds directly from CSR arrays (caller guarantees validity).
    pub fn from_csr(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1);
        assert_eq!(indices.len(), values.len());
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        SparseMatrix { rows, cols, indptr, indices, values }
    }

    /// All-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix { rows, cols, indptr: vec![0; rows + 1], indices: vec![], values: vec![] }
    }

    /// Sparse identity of order `n`.
    pub fn identity(n: usize) -> Self {
        SparseMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of non-zero cells.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Column indices / values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Random access (O(log nnz_row)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (idx, vals) = self.row(r);
        match idx.binary_search(&c) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Densifies.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Builds a CSR from a dense matrix, dropping zeros.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut indptr = Vec::with_capacity(d.rows() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..d.rows() {
            for (c, &v) in d.row(r).iter().enumerate() {
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        SparseMatrix { rows: d.rows(), cols: d.cols(), indptr, indices, values }
    }

    /// CSR transpose in O(nnz).
    pub fn transpose(&self) -> SparseMatrix {
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for c in 0..self.cols {
            counts[c + 1] += counts[c];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; nnz];
        let mut values = vec![0f64; nnz];
        let mut next = counts;
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                let pos = next[c];
                indices[pos] = r;
                values[pos] = v;
                next[c] += 1;
            }
        }
        SparseMatrix { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Per-row non-zero counts (used by the MNC sparsity estimator).
    pub fn row_nnz(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.indptr[r + 1] - self.indptr[r]).collect()
    }

    /// Per-column non-zero counts (used by the MNC sparsity estimator).
    pub fn col_nnz(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols];
        for &c in &self.indices {
            counts[c] += 1;
        }
        counts
    }

    /// Iterator over stored `(row, col, value)` triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (idx, vals) = self.row(r);
            idx.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Keeps only entries satisfying the predicate on `(row, col, value)`.
    pub fn filter(&self, mut pred: impl FnMut(usize, usize, f64) -> bool) -> SparseMatrix {
        SparseMatrix::from_triplets(
            self.rows,
            self.cols,
            self.triplets().filter(|&(r, c, v)| pred(r, c, v)).collect::<Vec<_>>(),
        )
    }

    /// Applies `f` to every stored value (implicit zeros untouched; results
    /// that become zero are dropped).
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> SparseMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out.prune()
    }

    /// Drops explicit zeros.
    pub fn prune(&self) -> SparseMatrix {
        if self.values.iter().all(|&v| v != 0.0) {
            return self.clone();
        }
        SparseMatrix::from_triplets(self.rows, self.cols, self.triplets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_roundtrip() {
        let m = SparseMatrix::from_triplets(3, 4, vec![(0, 1, 2.0), (2, 3, -1.0), (2, 0, 4.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 3), -1.0);
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = SparseMatrix::from_triplets(3, 2, vec![(0, 1, 5.0), (2, 0, 7.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(1, 0), 5.0);
        assert_eq!(t.get(0, 2), 7.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn dense_roundtrip() {
        let d = DenseMatrix::from_vec(2, 3, vec![0., 1., 0., 2., 0., 3.]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn row_and_col_counts() {
        let m = SparseMatrix::from_triplets(2, 3, vec![(0, 0, 1.), (0, 2, 1.), (1, 2, 1.)]);
        assert_eq!(m.row_nnz(), vec![2, 1]);
        assert_eq!(m.col_nnz(), vec![1, 0, 2]);
    }

    #[test]
    fn filter_selects_entries() {
        let m = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 5.0), (1, 1, 2.0)]);
        let f = m.filter(|_, _, v| v < 4.0);
        assert_eq!(f.nnz(), 1);
        assert_eq!(f.get(1, 1), 2.0);
    }

    #[test]
    fn empty_rows_have_consistent_indptr() {
        let m = SparseMatrix::from_triplets(4, 4, vec![(3, 3, 1.0)]);
        assert_eq!(m.get(3, 3), 1.0);
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(2).0.len(), 0);
    }
}
