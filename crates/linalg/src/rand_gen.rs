//! Seeded random matrix generators used by the workloads crate to
//! instantiate the paper's synthetic datasets (Table 5) and sparse
//! stand-ins for its real datasets (Table 4).

use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::rng::Rng64;
use crate::sparse::SparseMatrix;

/// Uniform `[0, 1)` dense matrix with a fixed seed.
pub fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng64::new(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.next_f64()).collect();
    DenseMatrix::from_vec(rows, cols, data)
}

/// Uniform `[lo, hi)` dense matrix.
pub fn random_dense_range(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    seed: u64,
) -> DenseMatrix {
    let mut rng = Rng64::new(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.range_f64(lo, hi)).collect();
    DenseMatrix::from_vec(rows, cols, data)
}

/// Sparse matrix with approximately `density * rows * cols` non-zeros drawn
/// uniformly (values in `[0.5, 1.5)` so entries never cancel to zero).
pub fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> SparseMatrix {
    let mut rng = Rng64::new(seed);
    let target = ((rows * cols) as f64 * density).round() as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        let r = rng.range_usize(rows.max(1));
        let c = rng.range_usize(cols.max(1));
        triplets.push((r, c, rng.range_f64(0.5, 1.5)));
    }
    SparseMatrix::from_triplets(rows, cols, triplets)
}

/// Sparse matrix whose values are integers in `[lo, hi]` (e.g. filter levels
/// 1..=5 for the Twitter matrix, service outcomes for MIMIC).
pub fn random_sparse_int(
    rows: usize,
    cols: usize,
    density: f64,
    lo: i64,
    hi: i64,
    seed: u64,
) -> SparseMatrix {
    let mut rng = Rng64::new(seed);
    let target = ((rows * cols) as f64 * density).round() as usize;
    let mut seen = std::collections::HashSet::with_capacity(target);
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        let r = rng.range_usize(rows.max(1));
        let c = rng.range_usize(cols.max(1));
        // Skip duplicate coordinates: summed duplicates would leave the
        // declared value range.
        if seen.insert((r, c)) {
            triplets.push((r, c, rng.range_i64(lo, hi) as f64));
        }
    }
    SparseMatrix::from_triplets(rows, cols, triplets)
}

/// Well-conditioned invertible matrix: random entries plus `n` on the
/// diagonal (strictly diagonally dominant).
pub fn random_invertible(n: usize, seed: u64) -> DenseMatrix {
    let mut m = random_dense_range(n, n, -0.5, 0.5, seed);
    for i in 0..n {
        let v = m.get(i, i) + n as f64 * 0.1 + 1.0;
        m.set(i, i, v);
    }
    m
}

/// Symmetric positive definite matrix `A A^T + n I`.
pub fn random_spd(n: usize, seed: u64) -> DenseMatrix {
    let a = random_dense_range(n, n, -1.0, 1.0, seed);
    let at = a.transpose();
    let mut out = crate::ops::multiply::dense_dense(&a, &at);
    for i in 0..n {
        let v = out.get(i, i) + n as f64 * 0.05 + 1.0;
        out.set(i, i, v);
    }
    out
}

/// Column vector with uniform entries.
pub fn random_vector(n: usize, seed: u64) -> Matrix {
    Matrix::Dense(random_dense(n, 1, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_dense(4, 4, 9), random_dense(4, 4, 9));
        assert_eq!(random_sparse(10, 10, 0.2, 9), random_sparse(10, 10, 0.2, 9));
    }

    #[test]
    fn sparse_density_is_approximate() {
        let s = random_sparse(100, 100, 0.05, 1);
        // Collisions can reduce the count slightly; allow a band.
        assert!(s.nnz() > 300 && s.nnz() <= 500, "nnz = {}", s.nnz());
    }

    #[test]
    fn invertible_matrices_invert() {
        let m = Matrix::Dense(random_invertible(10, 5));
        assert!(m.inverse().is_ok());
    }

    #[test]
    fn spd_is_symmetric() {
        let m = random_spd(6, 77);
        assert!(m.is_symmetric(1e-9));
    }

    #[test]
    fn int_sparse_values_in_range() {
        let s = random_sparse_int(50, 50, 0.1, 1, 5, 3);
        for (_, _, v) in s.triplets() {
            assert!((1.0..=5.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
        }
    }
}
