//! Matrix substrate for the HADAD reproduction.
//!
//! This crate provides the linear-algebra execution substrate that the
//! paper's evaluation runs on: dense (row-major) and sparse (CSR) matrices,
//! the full operator set `Lops` of HADAD §6.1 (products, element-wise ops,
//! transposition, inversion, determinants, traces, aggregates, Kronecker /
//! direct sums, matrix exponential), the matrix decompositions the
//! constraint catalogue reasons about (LU, pivoted LU, Cholesky, QR), and
//! CSV / MatrixMarket IO.
//!
//! Everything is implemented from scratch on `Vec<f64>` storage — no BLAS —
//! so that benchmark wall-times are a deterministic function of the
//! intermediate-result sizes HADAD's cost model reasons about.

pub mod backend;
pub mod dense;
pub mod error;
pub mod io;
pub mod matrix;
pub mod rand_gen;
pub mod rng;
pub mod sparse;

/// The operator kernels (`Lops`, paper §6.1).
pub mod ops {
    pub mod add;
    pub mod aggregates;
    pub mod elementwise;
    pub mod multiply;
    pub mod structural;
    pub mod transpose;
}

/// Matrix decompositions the constraint catalogue reasons about.
pub mod decomp {
    pub mod adjugate;
    pub mod cholesky;
    pub mod exp;
    pub mod lu;
    pub mod qr;
}

pub use backend::{
    backend_panics, default_backend, take_backend_panics, BackendKind, BackendPanic,
    ExecBackend, Parallel, Reference, UnknownBackend, PARALLEL, REFERENCE,
};
pub use dense::DenseMatrix;
pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use sparse::SparseMatrix;

/// Relative tolerance used across the workspace when comparing an original
/// expression's value against a rewriting's value (machine-checkable
/// soundness, cf. Theorem 8.1 of the paper).
pub const SOUNDNESS_RTOL: f64 = 1e-8;

/// Returns true when `a` and `b` are element-wise equal within a relative
/// tolerance of `rtol` (absolute floor `1e-10`).
pub fn approx_eq(a: &Matrix, b: &Matrix, rtol: f64) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a.get(r, c), b.get(r, c));
            let scale = x.abs().max(y.abs()).max(1.0);
            if (x - y).abs() > rtol * scale + 1e-10 {
                return false;
            }
        }
    }
    true
}
