//! Error type shared by all matrix kernels.

use std::fmt;

/// Errors produced by matrix kernels and decompositions.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// The operation that failed.
        op: &'static str,
        /// Left operand shape.
        lhs: (usize, usize),
        /// Right operand shape.
        rhs: (usize, usize),
    },
    /// Operation requires a square matrix.
    NotSquare {
        /// The operation that failed.
        op: &'static str,
        /// The offending shape.
        shape: (usize, usize),
    },
    /// Matrix is singular (or numerically singular) where invertibility is required.
    Singular {
        /// The operation that failed.
        op: &'static str,
    },
    /// Matrix is not symmetric positive definite where SPD is required.
    NotPositiveDefinite,
    /// IO / parse failure.
    Io(String),
    /// Anything else (kept for extensibility of the engine layer).
    Unsupported(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op} requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { op } => write!(f, "singular matrix in {op}"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::Io(msg) => write!(f, "io error: {msg}"),
            LinalgError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl From<std::io::Error> for LinalgError {
    fn from(e: std::io::Error) -> Self {
        LinalgError::Io(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
