//! Unified matrix value: dense or sparse, with operator dispatch.

use crate::dense::DenseMatrix;
use crate::error::{LinalgError, Result};
use crate::ops;
use crate::sparse::SparseMatrix;

/// A matrix value flowing through a HADAD pipeline: either dense row-major
/// or CSR sparse. Kernels pick representation-specific fast paths and decide
/// the representation of their output (e.g. sparse x sparse products stay
/// sparse; adding a dense matrix densifies).
#[derive(Debug, Clone, PartialEq)]
pub enum Matrix {
    /// Row-major dense storage.
    Dense(DenseMatrix),
    /// CSR sparse storage.
    Sparse(SparseMatrix),
}

impl Matrix {
    /// Dense zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix::Dense(DenseMatrix::zeros(rows, cols))
    }

    /// Dense identity.
    pub fn identity(n: usize) -> Matrix {
        Matrix::Dense(DenseMatrix::identity(n))
    }

    /// 1x1 scalar matrix.
    pub fn scalar(v: f64) -> Matrix {
        Matrix::Dense(DenseMatrix::scalar(v))
    }

    /// Dense matrix from a row-major vector.
    pub fn dense(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        Matrix::Dense(DenseMatrix::from_vec(rows, cols, data))
    }

    /// Sparse matrix from COO triplets.
    pub fn sparse(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Matrix {
        Matrix::Sparse(SparseMatrix::from_triplets(rows, cols, triplets))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.rows(),
            Matrix::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.cols(),
            Matrix::Sparse(s) => s.cols(),
        }
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Whether the CSR representation backs this matrix.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self, Matrix::Sparse(_))
    }

    /// Scalar if 1x1.
    pub fn as_scalar(&self) -> Option<f64> {
        if self.shape() == (1, 1) {
            Some(self.get(0, 0))
        } else {
            None
        }
    }

    /// Entry at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            Matrix::Dense(d) => d.get(r, c),
            Matrix::Sparse(s) => s.get(r, c),
        }
    }

    /// Stored/actual non-zero count.
    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.nnz(),
            Matrix::Sparse(s) => s.nnz(),
        }
    }

    /// Fraction of non-zero cells.
    pub fn density(&self) -> f64 {
        let cells = self.rows() as f64 * self.cols() as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Number of *materialized* cells: the memory-footprint proxy HADAD's
    /// cost model sums over intermediates (§7.1). Sparse matrices count
    /// their stored non-zeros, dense matrices their full extent.
    pub fn materialized_size(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.len(),
            Matrix::Sparse(s) => s.nnz(),
        }
    }

    /// Densified copy (or clone if already dense).
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(d) => d.clone(),
            Matrix::Sparse(s) => s.to_dense(),
        }
    }

    /// Sparse copy (or clone if already sparse).
    pub fn to_sparse(&self) -> SparseMatrix {
        match self {
            Matrix::Dense(d) => SparseMatrix::from_dense(d),
            Matrix::Sparse(s) => s.clone(),
        }
    }

    /// Errors with [`LinalgError::NotSquare`] unless square.
    pub fn check_square(&self, op: &'static str) -> Result<()> {
        if self.rows() != self.cols() {
            return Err(LinalgError::NotSquare { op, shape: self.shape() });
        }
        Ok(())
    }

    // ---- operator conveniences (delegate to `ops` kernels) ----

    /// Matrix product.
    pub fn multiply(&self, other: &Matrix) -> Result<Matrix> {
        ops::multiply::multiply(self, other)
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        ops::add::add(self, other)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        ops::add::sub(self, other)
    }

    /// Hadamard (element-wise) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        ops::elementwise::hadamard(self, other)
    }

    /// Element-wise division.
    pub fn divide(&self, other: &Matrix) -> Result<Matrix> {
        ops::elementwise::divide(self, other)
    }

    /// Scales every entry by `s`.
    pub fn scalar_mul(&self, s: f64) -> Matrix {
        ops::elementwise::scalar_mul(self, s)
    }

    /// Transposition.
    pub fn transpose(&self) -> Matrix {
        ops::transpose::transpose(self)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        ops::aggregates::sum(self)
    }

    /// Per-row sums, as a column vector.
    pub fn row_sums(&self) -> Matrix {
        ops::aggregates::row_sums(self)
    }

    /// Per-column sums, as a row vector.
    pub fn col_sums(&self) -> Matrix {
        ops::aggregates::col_sums(self)
    }

    /// Trace (square matrices only).
    pub fn trace(&self) -> Result<f64> {
        ops::aggregates::trace(self)
    }

    /// Matrix inverse via pivoted LU.
    pub fn inverse(&self) -> Result<Matrix> {
        crate::decomp::lu::inverse(self)
    }

    /// Determinant via pivoted LU.
    pub fn det(&self) -> Result<f64> {
        crate::decomp::lu::det(self)
    }

    /// `self^k` for `k >= 1` by repeated multiplication.
    pub fn power(&self, k: u32) -> Result<Matrix> {
        ops::structural::power(self, k)
    }
}

impl From<DenseMatrix> for Matrix {
    fn from(d: DenseMatrix) -> Self {
        Matrix::Dense(d)
    }
}

impl From<SparseMatrix> for Matrix {
    fn from(s: SparseMatrix) -> Self {
        Matrix::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_scalar() {
        let m = Matrix::scalar(4.5);
        assert_eq!(m.shape(), (1, 1));
        assert_eq!(m.as_scalar(), Some(4.5));
        assert_eq!(Matrix::zeros(2, 3).as_scalar(), None);
    }

    #[test]
    fn materialized_size_tracks_representation() {
        let d = Matrix::dense(2, 2, vec![0., 1., 0., 0.]);
        assert_eq!(d.materialized_size(), 4);
        let s = Matrix::sparse(2, 2, vec![(0, 1, 1.0)]);
        assert_eq!(s.materialized_size(), 1);
    }

    #[test]
    fn density_of_sparse() {
        let s = Matrix::sparse(10, 10, vec![(0, 0, 1.0), (5, 5, 1.0)]);
        assert!((s.density() - 0.02).abs() < 1e-12);
    }
}
