//! Row-major dense matrix.

use crate::error::{LinalgError, Result};

/// A dense `rows x cols` matrix of `f64`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from row-major data. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        DenseMatrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// 1x1 matrix holding a scalar (HADAD treats scalars as degenerate matrices).
    pub fn scalar(v: f64) -> Self {
        DenseMatrix { rows: 1, cols: 1, data: vec![v] }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (all) entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix stores no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Overwrites the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Count of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// True when the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Checks both operands have identical shape.
    pub fn check_same_shape(&self, other: &DenseMatrix, op: &'static str) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_unit_diagonal() {
        let i = DenseMatrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.get(0, 1), 4.0);
    }

    #[test]
    fn nnz_counts_nonzeros() {
        let m = DenseMatrix::from_vec(2, 2, vec![0., 1., 2., 0.]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn symmetric_detection() {
        let s = DenseMatrix::from_vec(2, 2, vec![1., 2., 2., 5.]);
        assert!(s.is_symmetric(1e-12));
        let ns = DenseMatrix::from_vec(2, 2, vec![1., 2., 3., 5.]);
        assert!(!ns.is_symmetric(1e-12));
    }
}
