//! Named fault-injection sites for robustness testing.
//!
//! Production code marks interesting failure surfaces with
//! [`hit`]`("site.name")?`. By default every site is inert: a single
//! relaxed atomic load and nothing else, so the instrumentation is free on
//! hot paths. Faults are armed two ways:
//!
//! * **Environment** — `HADAD_FAILPOINTS=site=action[,site=action...]`,
//!   parsed once on first use. Actions: `panic`, `error`, `delay:<ms>`.
//!   This is how CI drives whole-process fault matrices.
//! * **Programmatic** — [`scoped`] arms a site for the lifetime of the
//!   returned guard and serializes fault tests behind a global lock (the
//!   registry is process-wide state, so concurrent fault tests would
//!   otherwise bleed into each other).
//!
//! An armed site either panics (exercising `catch_unwind` supervision),
//! sleeps (exercising deadlines), or makes [`hit`] return
//! [`Injected`] so the caller's typed error path fires.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site.
    Panic,
    /// Return [`Injected`] from [`hit`].
    Error,
    /// Sleep for the given number of milliseconds, then continue normally.
    Delay(u64),
}

/// The typed error produced by an `error`-armed failpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injected {
    /// The failpoint that fired.
    pub site: &'static str,
}

impl fmt::Display for Injected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for Injected {}

/// `true` once any site has ever been armed (env or programmatic). Checked
/// with a relaxed load before touching the registry, so unarmed builds pay
/// one atomic read per site.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Programmatic overrides; take precedence over the env table.
static OVERRIDES: OnceLock<Mutex<HashMap<String, FailAction>>> = OnceLock::new();

/// Serializes fault tests: held by every [`ScopedFailpoint`] guard.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn overrides() -> &'static Mutex<HashMap<String, FailAction>> {
    OVERRIDES.get_or_init(|| Mutex::new(HashMap::new()))
}

fn parse_action(s: &str) -> Option<FailAction> {
    match s {
        "panic" => Some(FailAction::Panic),
        "error" => Some(FailAction::Error),
        _ => {
            let ms = s.strip_prefix("delay:")?;
            ms.parse().ok().map(FailAction::Delay)
        }
    }
}

/// Parses `site=action[,site=action...]`. Returns the armed table plus
/// every malformed entry verbatim: a typo must not take the process down
/// at startup, but it also must not vanish silently — a fault matrix run
/// with `c=bogus` would otherwise pass vacuously because the site was
/// never armed. Callers surface the second component loudly (stderr at
/// parse time, [`spec_errors`] for test assertions).
fn parse_spec(spec: &str) -> (HashMap<String, FailAction>, Vec<String>) {
    let mut map = HashMap::new();
    let mut malformed = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        match entry.split_once('=') {
            Some((site, action)) if !site.trim().is_empty() => {
                match parse_action(action.trim()) {
                    Some(a) => {
                        map.insert(site.trim().to_owned(), a);
                    }
                    None => malformed.push(entry.to_owned()),
                }
            }
            _ => malformed.push(entry.to_owned()),
        }
    }
    (map, malformed)
}

/// The env table plus the malformed entries found while parsing it.
fn env_state() -> &'static (HashMap<String, FailAction>, Vec<String>) {
    static ENV: OnceLock<(HashMap<String, FailAction>, Vec<String>)> = OnceLock::new();
    ENV.get_or_init(|| {
        let (map, malformed) =
            std::env::var("HADAD_FAILPOINTS").map(|s| parse_spec(&s)).unwrap_or_default();
        for entry in &malformed {
            eprintln!(
                "warning: HADAD_FAILPOINTS entry `{entry}` is malformed and was NOT armed \
                 (expected site=panic|error|delay:<ms>)"
            );
            hadad_obs::event(
                "failpoint.spec",
                hadad_obs::Severity::Warn,
                format!("malformed HADAD_FAILPOINTS entry `{entry}` was NOT armed"),
            );
        }
        if !map.is_empty() {
            ARMED.store(true, Ordering::Relaxed);
        }
        (map, malformed)
    })
}

fn env_table() -> &'static HashMap<String, FailAction> {
    &env_state().0
}

/// Malformed `HADAD_FAILPOINTS` entries encountered when the env spec was
/// parsed (empty when the spec was clean or unset). Fault-matrix harnesses
/// assert this is empty so a typo'd spec fails the run instead of passing
/// vacuously with the site unarmed.
pub fn spec_errors() -> &'static [String] {
    &env_state().1
}

/// Forces the env table to be parsed (and `ARMED` set) early. Called once
/// per process entry point that wants env-armed sites; `hit` also calls it
/// lazily the first time through the slow path, but until then the fast
/// path short-circuits, so binaries that care should init eagerly.
pub fn init_from_env() {
    env_table();
}

/// The action currently armed at `site`, if any.
pub fn action_for(site: &str) -> Option<FailAction> {
    if !ARMED.load(Ordering::Relaxed) {
        // Cheap common case — but the env table may simply not have been
        // parsed yet. Parse it once; after that, unarmed processes really
        // do take the one-atomic-load exit above.
        static ENV_INIT: OnceLock<()> = OnceLock::new();
        ENV_INIT.get_or_init(init_from_env);
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
    }
    if let Some(a) = overrides().lock().unwrap().get(site) {
        return Some(*a);
    }
    env_table().get(site).copied()
}

/// Evaluates the failpoint named `site`: inert when unarmed, otherwise
/// panics, sleeps, or returns [`Injected`] per the armed action.
pub fn hit(site: &'static str) -> Result<(), Injected> {
    match action_for(site) {
        None => Ok(()),
        Some(FailAction::Panic) => panic!("injected panic at failpoint `{site}`"),
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FailAction::Error) => Err(Injected { site }),
    }
}

/// RAII guard arming one site for its lifetime; disarms on drop. Also
/// holds the global fault-test lock so concurrent tests can't interleave
/// registry mutations.
pub struct ScopedFailpoint {
    site: String,
    _lock: MutexGuard<'static, ()>,
}

/// Arms `site` with `action` until the returned guard drops.
pub fn scoped(site: &str, action: FailAction) -> ScopedFailpoint {
    let lock = TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    overrides().lock().unwrap().insert(site.to_owned(), action);
    ARMED.store(true, Ordering::Relaxed);
    ScopedFailpoint { site: site.to_owned(), _lock: lock }
}

impl Drop for ScopedFailpoint {
    fn drop(&mut self) {
        overrides().lock().unwrap().remove(&self.site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_is_inert() {
        assert_eq!(hit("nothing.here"), Ok(()));
    }

    #[test]
    fn error_action_returns_injected() {
        let _g = scoped("t.err", FailAction::Error);
        assert_eq!(hit("t.err"), Err(Injected { site: "t.err" }));
        drop(_g);
        assert_eq!(hit("t.err"), Ok(()));
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _g = scoped("t.panic", FailAction::Panic);
        let err = std::panic::catch_unwind(|| hit("t.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("t.panic"));
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _g = scoped("t.delay", FailAction::Delay(5));
        let t0 = std::time::Instant::now();
        assert_eq!(hit("t.delay"), Ok(()));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn spec_parser_surfaces_malformed_entries() {
        let (m, bad) = parse_spec("a=panic, b=delay:30 ,c=bogus,d,e=error,=panic");
        assert_eq!(m.get("a"), Some(&FailAction::Panic));
        assert_eq!(m.get("b"), Some(&FailAction::Delay(30)));
        assert_eq!(m.get("e"), Some(&FailAction::Error));
        assert_eq!(m.len(), 3);
        // Malformed entries are reported verbatim, not silently dropped:
        // a bad action, a bare site, and an empty site.
        assert_eq!(bad, vec!["c=bogus".to_owned(), "d".to_owned(), "=panic".to_owned()]);
    }

    #[test]
    fn clean_spec_has_no_errors() {
        let (m, bad) = parse_spec("x=error,y=delay:1");
        assert_eq!(m.len(), 2);
        assert!(bad.is_empty());
        // An all-whitespace/empty spec is clean, not malformed.
        let (m, bad) = parse_spec(" , ,");
        assert!(m.is_empty() && bad.is_empty());
    }
}
