//! Repository automation (`cargo run -p xtask -- <task>`).
//!
//! `analyze` is the CI gate for rule soundness: it builds the standard
//! MMC catalogue (functional EGDs, structural and decomposition rules,
//! stats-propagation TGDs) plus a representative sample of view
//! constraints, runs the `hadad-analyze` static checks, prints the
//! report, and exits nonzero unless the set is certified —
//! range-restricted and weakly acyclic modulo conclusion-atom reuse.
//!
//! `obs-dump` arms the tracing gate, drives a small corpus through every
//! pipeline layer (chase, extraction, kernels, view maintenance, plan
//! cache), and exports the run profile: `TRACE_rewrite.json` (Chrome
//! `chrome://tracing` / Perfetto format) plus a metrics snapshot in JSON
//! (`METRICS_snapshot.json`) and Prometheus text
//! (`METRICS_snapshot.prom`). Exits nonzero if any layer failed to light
//! up its counters — CI runs it as the observability smoke gate.

use std::process::ExitCode;

use hadad_core::expr::dsl::{add, m, mul, smul, t, trace};
use hadad_core::{Catalogue, MatrixMeta, MetaCatalog, Vrem};
use hadad_linalg::{rand_gen, Matrix, PARALLEL};
use hadad_relational::{Catalog, Column, Table, Value};
use hadad_rewrite::{
    eval_with, CastKind, Env, HybridOptimizer, HybridPipeline, Optimizer, RelQuery,
};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(),
        Some("obs-dump") => obs_dump(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: analyze, obs-dump");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- <task>\n\ntasks:\n  \
                 analyze    static rule-soundness gate over the MMC catalogue\n  \
                 obs-dump   trace + metrics export over a cross-layer corpus"
            );
            ExitCode::FAILURE
        }
    }
}

/// Sample view definitions exercising the `V_IO`/`V_OI` generators the
/// optimizer emits per registered view: a chain product, an additive
/// mix with transpose, and a scalar-scaled trace-style reduction.
fn sample_views() -> Vec<(&'static str, hadad_core::Expr)> {
    vec![
        ("V_chain", mul(mul(m("A"), m("B")), m("C"))),
        ("V_mix", add(mul(t(m("A")), m("A")), m("G"))),
        ("V_scaled", smul(trace(mul(m("A"), t(m("A")))), m("C"))),
    ]
}

/// Drives one run of every pipeline layer with tracing armed, then
/// exports the profile. The corpus is deliberately small — the point is
/// coverage (every span site and counter family fires), not load.
fn obs_dump() -> ExitCode {
    hadad_obs::set_tracing(true);

    // LA layer: a matvec chain rewritten (chase + extraction + rank) and
    // the winning plan executed on the Parallel backend (kernels).
    let (n, k) = (96usize, 16usize);
    let mut la_cat = MetaCatalog::new();
    la_cat.register("A", MatrixMeta::dense(n, k));
    la_cat.register("B", MatrixMeta::dense(k, n));
    la_cat.register("x", MatrixMeta::dense(n, 1));
    let mut env = Env::new();
    env.bind("A", Matrix::Dense(rand_gen::random_dense(n, k, 11)));
    env.bind("B", Matrix::Dense(rand_gen::random_dense(k, n, 12)));
    env.bind("x", Matrix::Dense(rand_gen::random_dense(n, 1, 13)));
    let expr = mul(mul(m("A"), m("B")), m("x"));
    let opt = Optimizer::new(la_cat.clone());
    let (ranked, best, _result) = match opt.rewrite_verified(&expr, &env, 1e-9) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs-dump: LA rewrite failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if eval_with(&best.expr, &env, &PARALLEL).is_err() {
        eprintln!("obs-dump: best plan does not evaluate on the Parallel backend");
        return ExitCode::FAILURE;
    }

    // Relational layer: a filtered view over an events table behind a
    // plan-cached hybrid optimizer. Two same-epoch rewrites (miss + hit),
    // a logged insert + maintenance pass (IVM + epoch bump), then two
    // more rewrites (stale refusal + re-primed hit).
    let events = Table::new(vec![
        ("eid", Column::Int((0..64).collect())),
        ("kind", Column::Int((0..64).map(|i| i % 4).collect())),
    ]);
    let mut catalog = Catalog::new();
    catalog.register("events", events);
    let mut hy = HybridOptimizer::new(catalog, Optimizer::new(la_cat).with_plan_cache(16));
    if hy.register_table_view("spikes", RelQuery::scan("events").select_eq("kind", 3)).is_err()
    {
        eprintln!("obs-dump: view registration failed");
        return ExitCode::FAILURE;
    }
    // A snapshot reader makes maintenance publish refreshed catalog
    // snapshots (the concurrent-read path), lighting the snapshot.*
    // counters alongside the cache ones.
    let reader = match hy.reader() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs-dump: snapshot reader failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let pipeline = HybridPipeline {
        prefix: RelQuery::scan("events").select_eq("kind", 3),
        sort_key: None,
        cast: CastKind::Sparse {
            row: "eid".into(),
            col: "kind".into(),
            val: "kind".into(),
            rows: 128,
            cols: 4,
        },
        cast_name: "E".into(),
        suffix: expr.clone(),
    };
    for step in ["cold", "warm", "post-update", "re-primed"] {
        if step == "post-update" {
            let row = vec![Value::Int(64), Value::Int(3)];
            if hy.catalog.insert_rows("events", vec![row]).is_err()
                || hy.maintain_views().is_err()
            {
                eprintln!("obs-dump: update + maintenance pass failed");
                return ExitCode::FAILURE;
            }
            let snap = reader.current();
            if snap.epoch() == 0 {
                eprintln!("obs-dump: reader never observed the maintained epoch");
                return ExitCode::FAILURE;
            }
        }
        if hy.rewrite_hybrid(&pipeline).is_err() {
            eprintln!("obs-dump: {step} hybrid rewrite failed");
            return ExitCode::FAILURE;
        }
    }

    // Export: Chrome trace + metrics snapshot (JSON and Prometheus text).
    let spans = hadad_obs::take_trace();
    let snap = hadad_obs::snapshot();
    let writes = [
        ("TRACE_rewrite.json", hadad_obs::chrome_trace_json(&spans)),
        ("METRICS_snapshot.json", snap.to_json()),
        ("METRICS_snapshot.prom", snap.to_prometheus()),
    ];
    for (path, contents) in &writes {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("obs-dump: writing {path} failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Coverage gate: every layer must have lit its headline counter.
    let mut ok = true;
    for key in [
        "chase.rule_firings",
        "extract.solves",
        "maintain.passes",
        "kernel.gemm",
        "cache.hits",
        "cache.stale_refusals",
        "snapshot.publishes",
        "snapshot.reads",
    ] {
        let v = snap.counter(key).unwrap_or(0);
        println!("  {key} = {v}");
        if v == 0 {
            eprintln!("obs-dump: counter {key} never fired");
            ok = false;
        }
    }
    println!(
        "obs-dump: {} spans, {} counters, {} histograms | best {} (est x{:.1})",
        spans.len(),
        snap.counters.len(),
        snap.histograms.len(),
        best.expr,
        ranked.est_speedup(),
    );
    println!("wrote TRACE_rewrite.json + METRICS_snapshot.json + METRICS_snapshot.prom");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn analyze() -> ExitCode {
    let mut vrem = Vrem::new();
    let mut cat = Catalogue::standard(&mut vrem);

    let mut meta = MetaCatalog::new();
    meta.register("A", MatrixMeta::dense(64, 32));
    meta.register("B", MatrixMeta::dense(32, 48));
    meta.register("C", MatrixMeta::dense(48, 48));
    meta.register("G", MatrixMeta::dense(32, 32));
    for (name, def) in sample_views() {
        match Catalogue::la_view_constraints(&mut vrem, &meta, name, &def) {
            Ok(cs) => cat.constraints.extend(cs),
            Err(e) => {
                eprintln!("failed to build view constraints for {name}: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = cat.analyze(&vrem);
    print!("{}", report.display(Some(&vrem.vocab)));
    if report.certified() {
        println!(
            "certificate: catalogue + propagation rules + {} sample views are \
             range-restricted and weakly acyclic modulo conclusion-atom reuse",
            sample_views().len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("static analysis gate FAILED");
        ExitCode::FAILURE
    }
}
