//! Repository automation (`cargo run -p xtask -- <task>`).
//!
//! `analyze` is the CI gate for rule soundness: it builds the standard
//! MMC catalogue (functional EGDs, structural and decomposition rules,
//! stats-propagation TGDs) plus a representative sample of view
//! constraints, runs the `hadad-analyze` static checks, prints the
//! report, and exits nonzero unless the set is certified —
//! range-restricted and weakly acyclic modulo conclusion-atom reuse.

use std::process::ExitCode;

use hadad_core::expr::dsl::{add, m, mul, smul, t, trace};
use hadad_core::{Catalogue, MatrixMeta, MetaCatalog, Vrem};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: analyze");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- <task>\n\ntasks:\n  analyze    static rule-soundness gate over the MMC catalogue");
            ExitCode::FAILURE
        }
    }
}

/// Sample view definitions exercising the `V_IO`/`V_OI` generators the
/// optimizer emits per registered view: a chain product, an additive
/// mix with transpose, and a scalar-scaled trace-style reduction.
fn sample_views() -> Vec<(&'static str, hadad_core::Expr)> {
    vec![
        ("V_chain", mul(mul(m("A"), m("B")), m("C"))),
        ("V_mix", add(mul(t(m("A")), m("A")), m("G"))),
        ("V_scaled", smul(trace(mul(m("A"), t(m("A")))), m("C"))),
    ]
}

fn analyze() -> ExitCode {
    let mut vrem = Vrem::new();
    let mut cat = Catalogue::standard(&mut vrem);

    let mut meta = MetaCatalog::new();
    meta.register("A", MatrixMeta::dense(64, 32));
    meta.register("B", MatrixMeta::dense(32, 48));
    meta.register("C", MatrixMeta::dense(48, 48));
    meta.register("G", MatrixMeta::dense(32, 32));
    for (name, def) in sample_views() {
        match Catalogue::la_view_constraints(&mut vrem, &meta, name, &def) {
            Ok(cs) => cat.constraints.extend(cs),
            Err(e) => {
                eprintln!("failed to build view constraints for {name}: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = cat.analyze(&vrem);
    print!("{}", report.display(Some(&vrem.vocab)));
    if report.certified() {
        println!(
            "certificate: catalogue + propagation rules + {} sample views are \
             range-restricted and weakly acyclic modulo conclusion-atom reuse",
            sample_views().len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("static analysis gate FAILED");
        ExitCode::FAILURE
    }
}
